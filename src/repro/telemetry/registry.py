"""Dependency-free metrics registry: counters, gauges, histograms.

The registry is the passive half of the telemetry subsystem (the
active half — spans — lives in :mod:`repro.telemetry.tracer`).  It
follows the Prometheus data model because that is what operators
already know how to scrape and alert on:

* **Counter** — monotonically increasing event count (fixes served,
  NR fallbacks, residual-gate rejections).
* **Gauge** — a value that goes both ways (worker utilization,
  scatter coverage of the last stream).
* **Histogram** — fixed-bucket distribution (solver condition
  numbers, residual norms, iterations-to-convergence, bucket sizes).

Every metric optionally carries **labels** (declared up front, bound
per observation with :meth:`_Metric.labels`), so one metric family
covers all solvers/algorithms without name explosions.

Two registry implementations share one interface:

* :class:`MetricsRegistry` — the real thing, thread-safe, used when
  telemetry is installed.
* :class:`NullRegistry` — the **default**: every lookup returns a
  shared no-op instrument, so instrumented call sites cost one
  attribute check when telemetry is off.  Hot paths additionally gate
  expensive derived values (e.g. condition numbers) on
  ``registry.enabled``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # numpy is optional here: only batched inserts use it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the repo
    _np = None

from repro.errors import ConfigurationError

#: Default histogram buckets: a wide geometric ladder that keeps the
#: exporter useful when a call site does not know its scale yet.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(10.0**e for e in range(-3, 8))


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ConfigurationError(
            f"metric name must be non-empty [a-zA-Z0-9_:]+, got {name!r}"
        )
    if name[0].isdigit():
        raise ConfigurationError(f"metric name cannot start with a digit: {name!r}")


class _Instrument:
    """One time series: a metric family member bound to label values."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock


class CounterChild(_Instrument):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, lock: threading.RLock) -> None:
        super().__init__(lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        with self._lock:
            self.value += amount


class GaugeChild(_Instrument):
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self, lock: threading.RLock) -> None:
        super().__init__(lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add to the gauge."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract from the gauge."""
        with self._lock:
            self.value -= amount


class HistogramChild(_Instrument):
    """A fixed-bucket distribution with sum and count."""

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, lock: threading.RLock, buckets: Tuple[float, ...]) -> None:
        super().__init__(lock)
        self.buckets = buckets
        self.bucket_counts = [0] * len(buckets)  # cumulative at export time
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        # First bound >= value, found in C: the serving path observes
        # per request, and a Python scan over the bucket tuple was a
        # measurable slice of that budget.
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.sum += value
            self.count += 1
            if index < len(self.bucket_counts):
                self.bucket_counts[index] += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations under one lock acquisition.

        The serving path resolves whole flushes at once; bucketing each
        value (the pure part) happens outside the lock, then sum, count,
        and bucket counts are committed together.  Large batches bucket
        through one ``searchsorted``/``bincount`` pass instead of a
        per-value ``bisect`` loop — the service observes every latency
        of a flush here, so per-value Python overhead is a direct hit
        on the traced-off budget.
        """
        size = len(values)
        if not size:
            return
        buckets = self.buckets
        width = len(buckets)
        if _np is not None and size >= 32:
            array = _np.asarray(values, dtype=float)
            total = float(array.sum())
            # side="left" matches bisect_left: value == bound lands in
            # that bound's bucket; values past the last bound (index ==
            # width) only reach sum/count, like the scalar path.
            counts = _np.bincount(
                _np.searchsorted(buckets, array, side="left"),
                minlength=width + 1,
            ).tolist()
            with self._lock:
                self.sum += total
                self.count += size
                bucket_counts = self.bucket_counts
                for index in range(width):
                    if counts[index]:
                        bucket_counts[index] += counts[index]
            return
        total = 0.0
        indices = []
        for value in values:
            value = float(value)
            total += value
            index = bisect_left(buckets, value)
            if index < width:
                indices.append(index)
        with self._lock:
            self.sum += total
            self.count += size
            bucket_counts = self.bucket_counts
            for index in indices:
                bucket_counts[index] += 1

    def cumulative_counts(self) -> List[int]:
        """Per-bucket counts as Prometheus cumulative ``le`` counts."""
        return self.export_state()[0]

    def export_state(self) -> Tuple[List[int], float, int]:
        """``(cumulative_counts, sum, count)`` under one lock hold.

        Exports interleave with live writers, and ``observe`` commits
        sum, count, and the bucket under one lock — so a scrape that
        reads the three fields in separate acquisitions can tear (a
        ``+Inf`` bucket disagreeing with ``_count``, a ``_sum`` lagging
        observations already counted).  Scrape paths read through here.
        """
        with self._lock:
            total = 0
            cumulative = []
            for count in self.bucket_counts:
                total += count
                cumulative.append(total)
            return cumulative, self.sum, self.count


_CHILD_FACTORIES = {
    "counter": lambda lock, opts: CounterChild(lock),
    "gauge": lambda lock, opts: GaugeChild(lock),
    "histogram": lambda lock, opts: HistogramChild(lock, opts),
}


class _Metric:
    """A metric family: name, kind, label names, and its children."""

    __slots__ = ("name", "kind", "help", "label_names", "_children", "_lock", "_options")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        lock: threading.RLock,
        options=None,
    ) -> None:
        _validate_name(name)
        for label in label_names:
            _validate_name(label)
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._lock = lock
        self._options = options
        self._children: Dict[Tuple[str, ...], _Instrument] = {}
        if not label_names:
            # Label-less metrics are their single child; value methods
            # are forwarded below so `registry.counter("x").inc()` works.
            self._children[()] = _CHILD_FACTORIES[kind](lock, options)

    # -- child management ---------------------------------------------
    def labels(self, **label_values: str):
        """The child instrument for one combination of label values."""
        try:
            key = tuple(str(label_values[name]) for name in self.label_names)
        except KeyError:
            key = None
        if key is None or len(label_values) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} requires labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        # Lock-free lookup on the hot path (dict reads are atomic under
        # the GIL); the lock only serializes first-time creation.
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = _CHILD_FACTORIES[self.kind](self._lock, self._options)
                    self._children[key] = child
        return child

    def children(self) -> Iterable[Tuple[Tuple[str, ...], _Instrument]]:
        """Snapshot of ``(label_values, child)`` pairs, sorted."""
        with self._lock:
            return sorted(self._children.items())

    def _sole_child(self) -> _Instrument:
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled {self.label_names}; "
                "call .labels(...) first"
            )
        return self._children[()]

    # -- value methods forwarded for label-less metrics ----------------
    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less child."""
        self._sole_child().inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the label-less child (gauges only)."""
        self._sole_child().dec(amount)  # type: ignore[attr-defined]

    def set(self, value: float) -> None:
        """Set the label-less child (gauges only)."""
        self._sole_child().set(value)  # type: ignore[attr-defined]

    def observe(self, value: float) -> None:
        """Observe into the label-less child (histograms only)."""
        self._sole_child().observe(value)  # type: ignore[attr-defined]

    def observe_many(self, values: Sequence[float]) -> None:
        """Batch-observe into the label-less child (histograms only)."""
        self._sole_child().observe_many(values)  # type: ignore[attr-defined]


class MetricsRegistry:
    """A thread-safe, get-or-create collection of metric families.

    The registry is deliberately append-only (metrics are never
    unregistered; :meth:`reset` drops everything at once): call sites
    re-request their metric by name on every event, so the registry
    lookup *is* the instrumentation API and no import-time coupling to
    a metric object exists.
    """

    #: Real registries mark themselves enabled so hot paths can gate
    #: expensive derived observations (condition numbers, SVDs).
    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        options=None,
    ) -> _Metric:
        labels = tuple(labels)
        # Same locking discipline as _Metric.labels: lock-free read for
        # the (overwhelmingly common) already-registered case, lock +
        # double-check only to create.
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = _Metric(name, kind, help, labels, self._lock, options)
                    self._metrics[name] = metric
                    return metric
        if metric.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        if metric.label_names != labels:
            raise ConfigurationError(
                f"metric {name!r} already registered with labels "
                f"{metric.label_names}, not {labels}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> _Metric:
        """Get or create a counter family."""
        return self._get_or_create(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> _Metric:
        """Get or create a gauge family."""
        return self._get_or_create(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _Metric:
        """Get or create a histogram family with fixed bucket bounds."""
        # Fast path: call sites pass the same (already sorted, float)
        # bucket constant on every event, so an existing family with
        # matching bounds skips re-normalizing and re-validating them.
        metric = self._metrics.get(name)
        if (
            metric is not None
            and metric.kind == "histogram"
            and metric._options == tuple(buckets)
            and metric.label_names == tuple(labels)
        ):
            return metric
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ConfigurationError("histogram bucket bounds must be distinct")
        metric = self._get_or_create(name, "histogram", help, labels, bounds)
        if metric._options != bounds:
            raise ConfigurationError(
                f"histogram {name!r} already registered with buckets "
                f"{metric._options}, not {bounds}"
            )
        return metric

    # ------------------------------------------------------------------
    def collect(self) -> List[_Metric]:
        """All metric families, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-ready dict of every metric and sample."""
        document: Dict[str, Dict] = {}
        for metric in self.collect():
            samples = []
            for label_values, child in metric.children():
                labels = dict(zip(metric.label_names, label_values))
                if metric.kind == "histogram":
                    cumulative, hist_sum, hist_count = child.export_state()
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": {
                                repr(bound): count
                                for bound, count in zip(
                                    child.buckets, cumulative
                                )
                            },
                            "sum": hist_sum,
                            "count": hist_count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            document[metric.name] = {
                "kind": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "samples": samples,
            }
        return document

    def reset(self) -> None:
        """Drop every registered metric (a fresh registry, same object)."""
        with self._lock:
            self._metrics.clear()


class _NoOpInstrument:
    """Shared do-nothing instrument returned by :class:`NullRegistry`."""

    __slots__ = ()

    def labels(self, **label_values: str) -> "_NoOpInstrument":
        """Return self: label binding is free when disabled."""
        return self

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""

    def dec(self, amount: float = 1.0) -> None:
        """No-op."""

    def set(self, value: float) -> None:
        """No-op."""

    def observe(self, value: float) -> None:
        """No-op."""


_NOOP_INSTRUMENT = _NoOpInstrument()


class NullRegistry:
    """The default registry: every instrument is a shared no-op.

    Keeping the interface identical to :class:`MetricsRegistry` means
    instrumented code never branches on configuration — it just talks
    to whatever registry is installed — while paying only a couple of
    attribute lookups per event when telemetry is off.
    """

    enabled = False

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """The shared no-op instrument."""
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        """The shared no-op instrument."""
        return _NOOP_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        """The shared no-op instrument."""
        return _NOOP_INSTRUMENT

    def collect(self) -> List[_Metric]:
        """Always empty."""
        return []

    def snapshot(self) -> Dict[str, Dict]:
        """Always empty."""
        return {}

    def reset(self) -> None:
        """No-op."""


#: Process-wide shared null registry (stateless, so one suffices).
NULL_REGISTRY = NullRegistry()


def registry_from_snapshot(document: Mapping[str, Mapping]) -> MetricsRegistry:
    """Rebuild a live :class:`MetricsRegistry` from :meth:`MetricsRegistry.
    snapshot` output.

    The cross-process half of the fleet scrape: shard workers ship
    their registries to the router as snapshot dicts (plain JSON types
    over the control pipe — never live objects), and the router
    restores them here so :func:`aggregate_registries` /
    :func:`~repro.telemetry.exporters.to_prometheus_fleet_text` treat
    remote workers exactly like local registries.

    Lossless for every kind: snapshots export histogram buckets as
    *cumulative* counts keyed by ``repr(bound)`` — both round-trip
    exactly (``float(repr(x)) == x`` for float64, and de-cumulating
    recovers the per-bucket counts).
    """
    registry = MetricsRegistry()
    for name, family in document.items():
        kind = family["kind"]
        help_ = family.get("help", "")
        labels = tuple(family.get("label_names", ()))
        samples = family.get("samples", ())
        if kind != "histogram" and not samples:
            # Keep the (empty) family so definitions survive the trip;
            # a sample-less histogram is skipped instead — its bucket
            # ladder only exists on samples, and inventing one would
            # make aggregation conflicts where the source had none.
            _CHILD = registry.counter if kind == "counter" else registry.gauge
            _CHILD(name, help_, labels=labels)
            continue
        for sample in samples:
            label_values = {
                key: str(value) for key, value in sample.get("labels", {}).items()
            }
            if kind == "counter":
                registry.counter(name, help_, labels=labels).labels(
                    **label_values
                ).inc(float(sample["value"]))
            elif kind == "gauge":
                registry.gauge(name, help_, labels=labels).labels(
                    **label_values
                ).set(float(sample["value"]))
            else:
                exported = sample["buckets"]
                bounds = tuple(sorted(float(key) for key in exported))
                child = registry.histogram(
                    name, help_, labels=labels, buckets=bounds
                ).labels(**label_values)
                cumulative = [int(exported[repr(bound)]) for bound in bounds]
                with child._lock:
                    previous = 0
                    for index, total in enumerate(cumulative):
                        child.bucket_counts[index] = total - previous
                        previous = total
                    child.sum = float(sample["sum"])
                    child.count = int(sample["count"])
    return registry


def aggregate_registries(
    registries: Iterable[MetricsRegistry],
) -> MetricsRegistry:
    """Merge several registries into one fresh :class:`MetricsRegistry`.

    The fleet-scrape primitive: each worker of the sharded tier owns a
    private registry (no cross-process locks on the hot path), and the
    scrape endpoint merges them on demand.  Semantics per kind:

    * **counters** — summed per ``(name, label values)``: the fleet
      served the sum of what its workers served.
    * **gauges** — summed as well (queue depths, resident bytes add
      up).  Fleet-meaningless point gauges still *export* correctly;
      dashboards that need per-worker values scrape the workers.
    * **histograms** — merged element-wise: identical bucket ladders
      add per-bucket counts, sums, and counts exactly — merging is
      lossless, which is why the ladders are fixed at registration.

    Conflicting definitions under one name (different kind, label
    names, or histogram bounds) raise
    :class:`~repro.errors.ConfigurationError`: a fleet whose workers
    disagree about what a metric *is* must fail the scrape loudly, not
    export garbage.  ``NullRegistry`` instances contribute nothing and
    are allowed (a disabled worker is not a config error).
    """
    merged = MetricsRegistry()
    for registry in registries:
        for metric in registry.collect():
            if metric.kind == "histogram":
                family = merged.histogram(
                    metric.name,
                    metric.help,
                    labels=metric.label_names,
                    buckets=metric._options,
                )
            elif metric.kind == "counter":
                family = merged.counter(
                    metric.name, metric.help, labels=metric.label_names
                )
            else:
                family = merged.gauge(
                    metric.name, metric.help, labels=metric.label_names
                )
            for label_values, child in metric.children():
                target = family.labels(
                    **dict(zip(metric.label_names, label_values))
                )
                if metric.kind == "histogram":
                    with child._lock:
                        counts = list(child.bucket_counts)
                        total = child.count
                        sum_ = child.sum
                    with target._lock:
                        for index, count in enumerate(counts):
                            target.bucket_counts[index] += count
                        target.count += total
                        target.sum += sum_
                elif metric.kind == "counter":
                    target.inc(child.value)
                else:
                    target.inc(child.value)
    return merged
