"""The anomaly flight recorder: bounded capture, replayable dumps.

A :class:`FlightRecorder` keeps the last N fixes as compact
:class:`FixRecord` entries (inputs digest, config hash, stage timings,
verdicts — no arrays beyond one epoch's observations) in a ring
buffer, and when a fix carries a **trigger** — an FDE exclusion or
unrepaired fault, a degradation-ladder fallback, a deadline miss, a
float32 audit trip — it dumps a self-contained JSON **incident
artifact** to disk.

The artifact speaks the validation subsystem's replay protocol: it
records a ``status``/``kind``/``detail`` verdict computed by
re-solving the captured epoch through :func:`solve_captured`, the same
pure function :func:`replay_incident` runs later.  So
``repro-gps fuzz --replay incident-….json`` reproduces the solver-level
facts of a captured production anomaly exactly the way it reproduces a
failing fuzz seed — and a mismatch localizes what a code change
altered.  (Wall-clock circumstances — the queue wait that missed a
deadline — are recorded as context but are not part of the replayed
verdict; physics and verdict logic are.)

Like the registry and tracer, the recorder has an installed-state
seam: library call sites (the float32 audit in
:mod:`repro.solvers.batch`) fetch the active recorder through
:func:`get_recorder`, which defaults to a shared no-op — an unarmed
run pays one attribute check.  The service builds and owns its own
instance instead (per-service ring, no global state).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry.trace import TraceContext, format_request_id

#: The incident artifact format marker dispatched on by
#: :func:`repro.validation.fuzzer.replay_artifact`.
INCIDENT_FORMAT = "repro-flight-record-v1"

#: Trigger taxonomy — the anomalies worth a dump.
TRIGGER_FDE_EXCLUSION = "fde_exclusion"
TRIGGER_FDE_UNREPAIRED = "fde_unrepaired"
TRIGGER_DEADLINE_MISS = "deadline_miss"
TRIGGER_DEGRADED = "degraded"
TRIGGER_FLOAT32_AUDIT = "float32_audit"
TRIGGER_MONITOR = "monitor_alert"
TRIGGERS: Tuple[str, ...] = (
    TRIGGER_FDE_EXCLUSION,
    TRIGGER_FDE_UNREPAIRED,
    TRIGGER_DEADLINE_MISS,
    TRIGGER_DEGRADED,
    TRIGGER_FLOAT32_AUDIT,
    TRIGGER_MONITOR,
)


def _get_registry():
    """``repro.telemetry.get_registry``, bound on first use.

    The package imports this module, so a top-level import would be
    circular; the self-replacing indirection keeps the per-record call
    a plain global lookup after the first.
    """
    global _get_registry
    from repro.telemetry import get_registry

    _get_registry = get_registry
    return get_registry()


@dataclass(frozen=True)
class RecorderConfig:
    """Capacity and dump policy for one :class:`FlightRecorder`.

    Attributes
    ----------
    capacity:
        Ring-buffer depth (fixes retained for ``inspect``).
    dump_dir:
        Where incident artifacts go; ``None`` keeps the ring but
        disables dumping.
    triggers:
        Which trigger kinds dump (defaults to all of them).
    max_dumps:
        Artifact-count ceiling per recorder lifetime — an anomaly
        storm (every epoch tripping FDE) must not fill the disk; the
        ring still records everything.
    """

    capacity: int = 256
    dump_dir: Optional[Union[str, Path]] = None
    triggers: Tuple[str, ...] = TRIGGERS
    max_dumps: int = 64

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError("capacity must be at least 1")
        if self.max_dumps < 0:
            raise ConfigurationError("max_dumps must be >= 0")
        unknown = set(self.triggers) - set(TRIGGERS)
        if unknown:
            raise ConfigurationError(
                f"unknown recorder triggers {sorted(unknown)}; "
                f"valid triggers are {list(TRIGGERS)}"
            )
        object.__setattr__(self, "triggers", tuple(self.triggers))


# -- capture helpers ----------------------------------------------------
def epoch_payload(epoch) -> Dict:
    """One epoch's observations as a JSON-ready dict (exact floats).

    ``repr``-roundtrip-exact: json serializes Python floats at full
    precision, so the replayed epoch is bit-identical to the captured
    one.
    """
    positions, pseudoranges, prns, system_ids = epoch.dense()
    payload = {
        "week": int(epoch.time.week),
        "seconds_of_week": float(epoch.time.seconds_of_week),
        "prns": [int(p) for p in prns],
        "pseudoranges": [float(r) for r in pseudoranges],
        "positions": [[float(c) for c in row] for row in positions],
    }
    # The systems lane is recorded only when a non-GPS satellite is
    # present: all-GPS payloads (and their digests) stay byte-identical
    # to what earlier recorder versions captured.
    if any(int(s) for s in system_ids):
        from repro.constellation.systems import system_code

        payload["systems"] = [system_code(int(s)) for s in system_ids]
    return payload


def payload_epoch(payload: Mapping):
    """Rebuild the :class:`~repro.observations.ObservationEpoch`."""
    from repro.observations import ObservationEpoch, SatelliteObservation
    from repro.timebase import GpsTime

    return ObservationEpoch(
        time=GpsTime(
            week=int(payload["week"]),
            seconds_of_week=float(payload["seconds_of_week"]),
        ),
        observations=tuple(
            SatelliteObservation(
                prn=int(prn),
                position=np.asarray(position, dtype=float),
                pseudorange=float(pseudorange),
                system=str(system),
            )
            for prn, position, pseudorange, system in zip(
                payload["prns"],
                payload["positions"],
                payload["pseudoranges"],
                payload.get("systems", ["G"] * len(payload["prns"])),
            )
        ),
    )


def _digest(payload) -> str:
    """16-hex-char sha256 over a canonical JSON rendering."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def inputs_digest(epoch_dict: Mapping) -> str:
    """Stable digest of one captured epoch's inputs."""
    return _digest(epoch_dict)


def epoch_digest(epoch) -> str:
    """16-hex-char digest straight off an epoch's dense arrays.

    The hot-path variant of :func:`inputs_digest`: hashing array bytes
    skips the JSON rendering, so the flight recorder can digest every
    fix it retains, not just the ones it dumps.  (The two digests use
    different encodings and are not interchangeable; records carry
    whichever function produced them.)
    """
    positions, pseudoranges, prns, system_ids = epoch.dense()
    digest = hashlib.sha256()
    digest.update(np.asarray([epoch.time.week], dtype=np.int64).tobytes())
    digest.update(np.asarray([epoch.time.seconds_of_week]).tobytes())
    digest.update(np.ascontiguousarray(prns).tobytes())
    digest.update(np.ascontiguousarray(pseudoranges).tobytes())
    digest.update(np.ascontiguousarray(positions).tobytes())
    if system_ids.any():
        # Mixed-constellation epochs fold the system lane into the
        # digest; all-GPS epochs keep their historical digests.
        digest.update(np.ascontiguousarray(system_ids).tobytes())
    return digest.hexdigest()[:16]


def config_hash(
    solver_spec: Mapping, fde_spec: Optional[Mapping] = None, **extra
) -> str:
    """Stable digest of the solve configuration a fix ran under."""
    return _digest({"solver": dict(solver_spec), "fde": fde_spec, **extra})


class FixRecord:
    """One fix's compact flight-record entry.

    ``status``/``solver`` are the *service-level* outcome; ``trigger``
    is ``None`` for uneventful fixes and one of :data:`TRIGGERS` for
    anomalies.  ``epoch`` is the captured observation payload
    (:func:`epoch_payload`) — the one part big enough to matter, and
    the part that makes the record replayable.

    Hot-path construction happens once per served fix, so this is a
    plain ``__slots__`` class (dataclass construction is measurable at
    the service's per-request budget) and the inputs digest is lazy:
    pass the live epoch object as ``epoch_ref`` and :attr:`digest`
    hashes it on first read (snapshot, dump, inspect) instead of on
    the serving path.  Treat instances as immutable.
    """

    __slots__ = (
        "_request_id",
        "status",
        "solver",
        "recorded_at",
        "config_hash",
        "inputs_digest",
        "_trace_id",
        "trigger",
        "stage_seconds",
        "verdict",
        "error",
        "epoch",
        "solver_spec",
        "fde_spec",
        "trace",
        "attributes",
        "epoch_ref",
        "context",
        "monitor",
    )

    def __init__(
        self,
        request_id: Optional[str],
        status: str,
        solver: str,
        recorded_at: float,
        config_hash: str,
        inputs_digest: str = "",
        trace_id: Optional[str] = "",
        trigger: Optional[str] = None,
        stage_seconds: Optional[Dict[str, float]] = None,
        verdict: Optional[Dict] = None,
        error: Optional[str] = None,
        epoch: Optional[Dict] = None,
        solver_spec: Optional[Dict] = None,
        fde_spec: Optional[Dict] = None,
        trace: Optional[object] = None,
        attributes: Optional[Dict] = None,
        epoch_ref: Optional[object] = None,
        context: Optional[object] = None,
        monitor: Optional[Dict] = None,
    ) -> None:
        self._request_id = request_id
        self.status = status
        self.solver = solver
        self.recorded_at = recorded_at
        self.config_hash = config_hash
        self.inputs_digest = inputs_digest
        self._trace_id = trace_id
        self.trigger = trigger
        self.stage_seconds = {} if stage_seconds is None else stage_seconds
        self.verdict = verdict
        self.error = error
        self.epoch = epoch
        self.solver_spec = {} if solver_spec is None else solver_spec
        self.fde_spec = fde_spec
        # A dict, or any object with to_dict() (e.g. a RequestTrace) —
        # serialized lazily so the serving path never renders span
        # trees.
        self.trace = trace
        self.attributes = {} if attributes is None else attributes
        # Live epoch for lazy digesting; never serialized (the
        # replayable form is `epoch`, captured only for triggered
        # records).
        self.epoch_ref = epoch_ref
        # TraceContext for lazy id resolution; when request_id/trace_id
        # are None the strings format here on first read instead of on
        # the serving path.
        self.context = context
        # The signal-plausibility verdict dict, set only when a monitor
        # raised on this fix (nominal epochs carry None).
        self.monitor = monitor

    @property
    def request_id(self) -> str:
        value = self._request_id
        if value is None:
            context = self.context
            value = context.request_id if context is not None else ""
            self._request_id = value
        return value

    @property
    def trace_id(self) -> str:
        value = self._trace_id
        if value is None:
            context = self.context
            value = context.trace_id if context is not None else ""
            self._trace_id = value
        return value

    def __repr__(self) -> str:
        return (
            f"FixRecord(request_id={self.request_id!r}, "
            f"status={self.status!r}, solver={self.solver!r}, "
            f"trigger={self.trigger!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FixRecord)
            and self.to_dict() == other.to_dict()
        )

    __hash__ = None  # mutable digest cache inside; not hashable

    @property
    def digest(self) -> str:
        """The inputs digest, hashed from ``epoch_ref`` on first read."""
        if self.inputs_digest:
            return self.inputs_digest
        if self.epoch_ref is not None:
            value = epoch_digest(self.epoch_ref)
            self.inputs_digest = value
            return value
        return ""

    def to_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "status": self.status,
            "solver": self.solver,
            "trigger": self.trigger,
            "recorded_at": self.recorded_at,
            "inputs_digest": self.digest,
            "config_hash": self.config_hash,
            "stage_seconds": dict(self.stage_seconds),
            "verdict": self.verdict,
            "error": self.error,
            "epoch": self.epoch,
            "solver_spec": dict(self.solver_spec),
            "fde_spec": self.fde_spec,
            "trace": (
                self.trace.to_dict()
                if hasattr(self.trace, "to_dict")
                else self.trace
            ),
            "attributes": dict(self.attributes),
            "monitor": self.monitor,
        }


# -- deterministic replay ----------------------------------------------
def solve_captured(
    epoch_dict: Mapping,
    solver_spec: Mapping,
    fde_spec: Optional[Mapping] = None,
) -> Tuple[str, Tuple[str, ...]]:
    """Re-solve a captured epoch; the ``(status, detail)`` it earns.

    A pure function of the payload: the engine solves the rebuilt
    epoch with the recorded algorithm, resolved clock bias, and FDE
    config, and the outcome is rendered as deterministic detail lines.
    Called once at dump time (to stamp the artifact) and again by
    :func:`replay_incident` — equality of the two runs is the replay
    guarantee.
    """
    # Imported lazily: the engine (and integrity) import repro.telemetry.
    from repro.engine.pipeline import PositioningEngine
    from repro.errors import ReproError
    from repro.integrity.fde import FdeConfig

    algorithm = str(solver_spec.get("algorithm", "dlg"))
    bias = solver_spec.get("clock_bias_meters")
    engine = PositioningEngine(
        algorithm=algorithm,
        fde_config=FdeConfig(**fde_spec) if fde_spec else None,
    )
    epoch = payload_epoch(epoch_dict)
    try:
        result = engine.solve_stream(
            [epoch],
            biases=None if bias is None else [float(bias)],
            on_undersized="drop",
        )
    except ReproError as exc:
        return "failed", (f"{type(exc).__name__}: {exc}",)

    position = result.positions[0]
    solved = bool(np.all(np.isfinite(position)))
    detail: List[str] = [f"solver={algorithm}"]
    if solved:
        detail.append(
            "position="
            + ",".join(f"{float(c):.3f}" for c in position)
        )
        detail.append(f"clock_bias={float(result.clock_biases[0]):.3f}")
    else:
        detail.append("position=unsolved")
    fde = result.diagnostics.fde
    if fde is None:
        detail.append("fde=disabled")
    else:
        verdict = fde.verdict(0)
        detail.append(f"fde={verdict.status}")
        if verdict.excluded_prn is not None:
            detail.append(f"excluded_prn={int(verdict.excluded_prn)}")
        if verdict.test_statistic is not None:
            detail.append(
                f"statistic={float(verdict.test_statistic):.6e}"
                f" threshold={float(verdict.threshold):.6e}"
            )
    return ("ok" if solved else "failed"), tuple(detail)


def build_incident_payload(record: FixRecord) -> Dict:
    """The self-contained replayable artifact for one triggered fix."""
    if record.epoch is None:
        raise ConfigurationError(
            "cannot build an incident artifact without a captured epoch"
        )
    status, detail = solve_captured(
        record.epoch, record.solver_spec, record.fde_spec
    )
    return {
        "format": INCIDENT_FORMAT,
        # Replay-protocol fields (compared by `repro-gps fuzz --replay`):
        "seed": int((record.digest or "0")[:8], 16),
        "status": status,
        "kind": f"incident:{record.trigger}",
        "detail": list(detail),
        "fault": None,
        # Incident context (not replayed, kept for humans and inspect):
        "record": record.to_dict(),
    }


def replay_incident(payload: Mapping):
    """Re-run a flight-recorder incident artifact, deterministically.

    Returns a :class:`~repro.validation.fuzzer.FuzzCaseResult` whose
    ``status``/``detail`` re-derive from the captured epoch via
    :func:`solve_captured`; ``seed`` and ``kind`` identify the case.
    A field-for-field match with the recorded payload means the
    incident's solver-level behavior reproduces on the current code.
    """
    from repro.validation.fuzzer import FuzzCaseResult

    record = payload.get("record", {})
    status, detail = solve_captured(
        record["epoch"], record.get("solver_spec", {}), record.get("fde_spec")
    )
    return FuzzCaseResult(
        seed=int(payload.get("seed", 0)),
        status=status,
        kind=str(payload.get("kind", "incident:unknown")),
        detail=detail,
    )


def _entry_request_id(entry) -> str:
    """A lazy flush entry's request id, without materializing it."""
    shared = entry[0]
    context = entry[1]
    if context is not None:
        # The service stores a bare request number per entry; format
        # the id directly rather than materializing a context for it.
        if type(context) is int:
            return format_request_id(context)
        return context.request_id
    return f"fix-{shared[2].get('batch_sequence', 0)}-{entry[8]}"


def _materialize_entry(entry) -> FixRecord:
    """Build the :class:`FixRecord` a lazy flush entry stands for."""
    if type(entry) is FixRecord:
        return entry
    (
        shared,
        context,
        status,
        solver,
        error,
        integrity,
        trace,
        epoch,
        index,
    ) = entry
    recorded_at, cfg_hash, attributes, stages, solver_spec, fde_spec = shared
    if type(context) is int:
        # Materialize the number the service stored: through the
        # request's trace when one rode along (it carries the
        # deadline), directly otherwise.
        context = (
            trace.context
            if trace is not None
            else TraceContext.from_number(context)
        )
    return FixRecord(
        (
            None
            if context is not None
            else f"fix-{attributes.get('batch_sequence', 0)}-{index}"
        ),
        status,
        solver or "",
        recorded_at,
        cfg_hash,
        "",  # inputs_digest: lazy, via epoch_ref
        None if context is not None else "",
        None,  # lazy entries are untriggered by construction
        stages,
        integrity.to_dict() if integrity is not None else None,
        error,
        None,  # no captured epoch payload for uneventful fixes
        solver_spec,
        fde_spec,
        trace,
        attributes,
        epoch,  # epoch_ref
        context,
    )


# -- the recorder -------------------------------------------------------
class FlightRecorder:
    """Bounded per-fix capture with triggered incident dumps."""

    enabled = True

    def __init__(self, config: Optional[RecorderConfig] = None) -> None:
        self._config = config if config is not None else RecorderConfig()
        self._ring: Deque[FixRecord] = deque(maxlen=self._config.capacity)
        self._dump_paths: List[str] = []
        self._dump_failures = 0
        self._lock = threading.Lock()
        # Per-registry cached counter children; record() runs once per
        # served fix, so the name->metric->child lookups are hoisted
        # out of the hot path (invalidated when the installed registry
        # changes, e.g. across tests).
        self._handles_registry: Optional[object] = None
        self._fixes_untriggered = None
        self._fixes_triggered = None

    def _bind_fix_counters(self, registry) -> None:
        counter = registry.counter(
            "repro_recorder_fixes_total",
            "Fixes captured by the flight recorder.",
            labels=("triggered",),
        )
        self._fixes_untriggered = counter.labels(triggered="no")
        self._fixes_triggered = counter.labels(triggered="yes")
        self._handles_registry = registry

    @property
    def config(self) -> RecorderConfig:
        """The capacity/dump policy."""
        return self._config

    @property
    def dump_paths(self) -> Tuple[str, ...]:
        """Incident artifacts written so far, in order."""
        with self._lock:
            return tuple(self._dump_paths)

    def record(self, record: FixRecord) -> Optional[str]:
        """Retain one fix; dump it if triggered.  Returns the artifact
        path when a dump was written."""
        # Lock-free hot path: deque.append is atomic under the GIL and
        # the config fields are immutable, so the only state needing
        # the lock (dump bookkeeping) lives on the triggered branch.
        self._ring.append(record)
        registry = _get_registry()
        if registry.enabled:
            if registry is not self._handles_registry:
                self._bind_fix_counters(registry)
            if record.trigger is not None:
                self._fixes_triggered.inc()
            else:
                self._fixes_untriggered.inc()
        if record.trigger is None:
            return None
        return self._maybe_dump(record, registry)

    def record_batch(self, records: Sequence[FixRecord]) -> List[str]:
        """Retain one flush's fixes; dump the triggered ones.

        The serving path resolves a whole batch at once, so the counter
        arithmetic runs once per flush (two increments) instead of once
        per fix.  Returns the artifact paths written, in record order.
        """
        ring_append = self._ring.append
        triggered: Optional[List[FixRecord]] = None
        for record in records:
            ring_append(record)
            if record.trigger is not None:
                if triggered is None:
                    triggered = [record]
                else:
                    triggered.append(record)
        registry = _get_registry()
        if registry.enabled:
            if registry is not self._handles_registry:
                self._bind_fix_counters(registry)
            n_triggered = 0 if triggered is None else len(triggered)
            if n_triggered:
                self._fixes_triggered.inc(n_triggered)
            if len(records) > n_triggered:
                self._fixes_untriggered.inc(len(records) - n_triggered)
        if triggered is None:
            return []
        paths = []
        for record in triggered:
            path = self._maybe_dump(record, registry)
            if path is not None:
                paths.append(path)
        return paths

    def record_flush(
        self, entries: Sequence, triggered: Sequence[FixRecord]
    ) -> List[str]:
        """Retain one flush, mostly as *lazy* entries.

        ``entries`` is the flush in request order: uneventful fixes as
        ``(shared, context, status, solver, error, integrity, trace,
        epoch, index)`` tuples over values the dispatch loop already
        holds (``context`` may be a bare request *number* — the
        service's cheapest identity — a :class:`TraceContext`, or
        ``None``), anomalies as eager :class:`FixRecord` instances
        (``triggered`` lists exactly those).  A lazy entry materializes
        into a record on first read (:meth:`find`, :meth:`records`,
        :meth:`snapshot`), so the serving path pays one tuple per fix
        and one C-level ring extend per flush.  Deliberately *not*
        retained: the ``ServiceResult`` itself.  An entry holds the
        five scalar-ish fields a record needs, so the bulky result
        graph (position array, per-request timing) dies with the
        caller while still cache-hot — a ring that pins the last N
        result graphs pays their deallocation a few flushes later,
        against cold memory, which measures as the recorder's largest
        hot-path cost.
        """
        self._ring.extend(entries)
        registry = _get_registry()
        if registry.enabled:
            if registry is not self._handles_registry:
                self._bind_fix_counters(registry)
            if triggered:
                self._fixes_triggered.inc(len(triggered))
            if len(entries) > len(triggered):
                self._fixes_untriggered.inc(len(entries) - len(triggered))
        if not triggered:
            return []
        paths = []
        for record in triggered:
            path = self._maybe_dump(record, registry)
            if path is not None:
                paths.append(path)
        return paths

    def _maybe_dump(self, record: FixRecord, registry) -> Optional[str]:
        """Write the incident artifact for a triggered record, if the
        dump policy allows one."""
        if (
            record.trigger not in self._config.triggers
            or record.epoch is None
            or self._config.dump_dir is None
        ):
            return None
        with self._lock:
            if len(self._dump_paths) >= self._config.max_dumps:
                return None
        path = self._dump(record)
        if path is not None and registry.enabled:
            registry.counter(
                "repro_recorder_dumps_total",
                "Incident artifacts written, by trigger.",
                labels=("trigger",),
            ).labels(trigger=record.trigger).inc()
        return path

    def _dump(self, record: FixRecord) -> Optional[str]:
        try:
            payload = build_incident_payload(record)
            directory = Path(self._config.dump_dir)
            directory.mkdir(parents=True, exist_ok=True)
            name = f"incident-{record.trigger}-{record.request_id or record.digest}.json"
            path = directory / name
            path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        except Exception:
            # A broken disk must not take the serving path down with
            # it; the ring entry survives either way.
            with self._lock:
                self._dump_failures += 1
            return None
        with self._lock:
            self._dump_paths.append(str(path))
        return str(path)

    # -- inspection ----------------------------------------------------
    def records(self, last: Optional[int] = None) -> List[FixRecord]:
        """The most recent ``last`` records (all, oldest-first, when
        ``None``)."""
        with self._lock:
            items = list(self._ring)
        if last is not None:
            items = items[-last:]
        return [_materialize_entry(entry) for entry in items]

    def find(self, request_id: str) -> Optional[FixRecord]:
        """The retained record for ``request_id`` (newest wins)."""
        with self._lock:
            for entry in reversed(self._ring):
                if type(entry) is FixRecord:
                    if entry.request_id == request_id:
                        return entry
                elif _entry_request_id(entry) == request_id:
                    return _materialize_entry(entry)
        return None

    def snapshot(self) -> Dict:
        """JSON-ready view (the ``/records`` endpoint, inspect)."""
        with self._lock:
            records = [
                _materialize_entry(entry).to_dict() for entry in self._ring
            ]
            dumps = list(self._dump_paths)
            failures = self._dump_failures
        return {
            "capacity": self._config.capacity,
            "retained": len(records),
            "dump_dir": (
                str(self._config.dump_dir)
                if self._config.dump_dir is not None
                else None
            ),
            "dumps": dumps,
            "dump_failures": failures,
            "records": records,
        }


class NullRecorder:
    """The no-op recorder installed by default: one attribute check."""

    enabled = False

    def record(self, record) -> None:
        return None

    def records(self, last: Optional[int] = None) -> List:
        return []

    def find(self, request_id: str) -> None:
        return None

    def snapshot(self) -> Dict:
        return {"capacity": 0, "retained": 0, "dump_dir": None,
                "dumps": [], "dump_failures": 0, "records": []}


NULL_RECORDER = NullRecorder()

_active_recorder = NULL_RECORDER


def get_recorder():
    """The process-wide recorder library hooks report to (no-op by
    default — the float32 audit trip is the one current client)."""
    return _active_recorder


def install_recorder(recorder: Optional[FlightRecorder] = None) -> FlightRecorder:
    """Install a recorder process-wide and return it."""
    global _active_recorder
    _active_recorder = recorder if recorder is not None else FlightRecorder()
    return _active_recorder


def uninstall_recorder() -> None:
    """Back to the no-op recorder."""
    global _active_recorder
    _active_recorder = NULL_RECORDER


def now_seconds() -> float:
    """Wall-clock stamp for records (monotonic stays for spans)."""
    return time.time()
