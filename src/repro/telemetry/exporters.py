"""Exporters: Prometheus text format and JSON snapshots.

Two serializations of the same registry state:

* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``le`` histogram
  buckets, ``_sum``/``_count`` series), scrape-ready for a pushgateway
  file or a textfile collector.
* :func:`to_json_snapshot` — a structured document bundling metrics,
  finished spans, and caller-supplied extras (e.g. engine
  diagnostics), the machine-readable record a benchmark or CI
  artifact wants.

:func:`write_snapshot` picks the format from the file extension so
CLI flags like ``--metrics-out run.prom`` / ``--metrics-out run.json``
do the right thing.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional

from repro.telemetry.registry import (
    MetricsRegistry,
    NullRegistry,
    aggregate_registries,
)
from repro.telemetry.tracer import NullTracer, SpanTracer


def _format_value(value: float) -> str:
    """Prometheus sample value: integers bare, floats compact."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_string(names, values, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    for name, value in (extra or {}).items():
        pairs.append(f'{name}="{_escape_label_value(value)}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus_text(registry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for label_values, child in metric.children():
            if metric.kind == "histogram":
                # One lock hold for buckets + sum + count: a writer
                # landing between separate reads would tear the scrape.
                cumulative, hist_sum, hist_count = child.export_state()
                for bound, count in zip(child.buckets, cumulative):
                    labels = _label_string(
                        metric.label_names, label_values, {"le": _format_value(bound)}
                    )
                    lines.append(f"{metric.name}_bucket{labels} {count}")
                inf_labels = _label_string(
                    metric.label_names, label_values, {"le": "+Inf"}
                )
                lines.append(f"{metric.name}_bucket{inf_labels} {hist_count}")
                plain = _label_string(metric.label_names, label_values)
                lines.append(f"{metric.name}_sum{plain} {_format_value(hist_sum)}")
                lines.append(f"{metric.name}_count{plain} {hist_count}")
            else:
                labels = _label_string(metric.label_names, label_values)
                lines.append(f"{metric.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_prometheus_fleet_text(registries) -> str:
    """One scrape page over many registries (the fleet endpoint).

    Merges the registries with
    :func:`~repro.telemetry.registry.aggregate_registries` — counters
    and gauges sum, histograms add per-bucket — renders the merged
    registry as ordinary Prometheus text, and appends a
    ``repro_fleet_registries`` gauge so dashboards can see how many
    members the aggregate covers.  The output is *exactly* the sum of
    its parts: scraping each member and adding series yields the same
    numbers.
    """
    registries = list(registries)
    merged = aggregate_registries(registries)
    merged.gauge(
        "repro_fleet_registries",
        "Member registries merged into this scrape.",
    ).set(len(registries))
    return to_prometheus_text(merged)


def to_json_snapshot(
    registry,
    tracer=None,
    extra: Optional[Dict] = None,
) -> Dict:
    """A JSON-ready document of metrics, spans, and caller extras."""
    document: Dict = {
        "telemetry": {
            "enabled": bool(getattr(registry, "enabled", False)),
        },
        "metrics": registry.snapshot(),
        "spans": tracer.snapshot() if tracer is not None else [],
    }
    if extra:
        document["extra"] = dict(extra)
    return document


def write_snapshot(
    path: str,
    registry,
    tracer=None,
    extra: Optional[Dict] = None,
) -> str:
    """Write registry (+tracer) state to ``path``; format by extension.

    ``.prom`` / ``.txt`` get Prometheus text, everything else gets the
    JSON snapshot.  Returns the path written.
    """
    lowered = path.lower()
    if lowered.endswith((".prom", ".txt")):
        payload = to_prometheus_text(registry)
    else:
        payload = json.dumps(
            to_json_snapshot(registry, tracer, extra), indent=2, sort_keys=True
        )
        payload += "\n"
    with open(path, "w") as handle:
        handle.write(payload)
    return path
