"""Per-request trace contexts and span trees.

Where :mod:`repro.telemetry.tracer` records *process-wide* flat spans
(a flame graph of whatever ran), this module gives each **request** its
own identity and its own tree: a :class:`TraceContext` minted at
service ingress rides the request through micro-batching, the engine,
the batch solvers, and FDE, and comes back on the
:class:`~repro.service.types.ServiceResult` as a :class:`RequestTrace`
— a span tree whose leaves are the engine's per-stage timings
(``queue``/``pack``/``validate``/``solve``/``fde``/``scatter``) plus
the **batch lineage** of the request: which dispatch it shared, which
peers rode along, which same-satellite-count bucket it solved in and
which row it landed on.

The trace plane is **off by default** and costs nothing when off: the
service only mints request identities and assembles trees when
``ServiceConfig(trace=True)``, and nothing here is imported on the
solver hot path.  Even traced-on, ingress stores one counter *number*
per request (:func:`mint_request_number`); the :class:`TraceContext`
object materializes from it lazily the first time anything reads it.

Timing semantics: all span times are *loop/monotonic clock* seconds
(the asyncio loop clock at the service tier), comparable only within
one process.  Stage child spans are reconstructed from measured stage
*durations*, so their start offsets are cumulative estimates — the
durations are exact, the sub-stage ordering is by construction.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Engine stage names in execution order (mirrors
#: ``EngineResult.stage_seconds``); the service prefixes a ``queue``
#: stage of its own.
ENGINE_STAGES: Tuple[str, ...] = ("pack", "validate", "solve", "fde", "scatter")

#: Per-process id prefix: distinguishes ids minted by different worker
#: processes once the sharded tier aggregates their traces.
_ID_PREFIX = os.urandom(3).hex()
_REQUEST_COUNTER = itertools.count(1)
# Pre-joined tag prefixes: ids are minted per request on the serving
# path, so ``new`` concatenates instead of re-formatting the prefix.
_TRACE_TAG = "t-" + _ID_PREFIX + "-"
_REQUEST_TAG = "r-" + _ID_PREFIX + "-"


def mint_request_number() -> int:
    """Mint the integer identity for one request — the cheapest
    possible trace-armed ingress: one counter bump, no object
    allocation.  The service stores this number on the pending request;
    a :class:`RequestTrace` built over it materializes the full
    :class:`TraceContext` lazily on first read.

    A real ``def`` (not a bound ``count.__next__``) on purpose: callers
    import it by name, and :func:`reset_trace_identity` must be able to
    swap the underlying counter after a fork without stale references
    in importing modules.
    """
    return next(_REQUEST_COUNTER)


def reset_trace_identity() -> None:
    """Re-seed the per-process id prefix and restart the counter.

    A forked child inherits the parent's prefix and counter position,
    so without a reset two processes mint *colliding* request ids.
    Called automatically in fork children (see
    :mod:`repro.telemetry`'s ``os.register_at_fork`` hook); spawn
    starts from a fresh import and needs nothing.
    """
    global _ID_PREFIX, _REQUEST_COUNTER, _TRACE_TAG, _REQUEST_TAG
    _ID_PREFIX = os.urandom(3).hex()
    _REQUEST_COUNTER = itertools.count(1)
    _TRACE_TAG = "t-" + _ID_PREFIX + "-"
    _REQUEST_TAG = "r-" + _ID_PREFIX + "-"


def format_request_id(number: int) -> str:
    """The request-id string a minted request number resolves to."""
    return _REQUEST_TAG + format(number, "08x")


class TraceContext:
    """The identity one request carries through the serving stack.

    A plain ``__slots__`` value class, not a dataclass: one is minted
    per submission when the trace plane is armed, and dataclass
    construction overhead is measurable against the batched service's
    per-request budget.  Treat instances as immutable.

    Attributes
    ----------
    trace_id:
        End-to-end correlation id.  Today one request is one trace; the
        sharded tier will reuse a caller-supplied trace id across
        retries and shards.
    request_id:
        This submission's unique id — what ``repro-gps inspect
        --request`` looks up.
    origin:
        Where the context was minted (``"service.submit"``, a station
        id, a load generator name ...).
    deadline:
        The request's loop-clock deadline, or ``None``; carried so any
        layer can annotate "how close to the deadline was I" without
        threading the service's bookkeeping through.
    """

    __slots__ = ("_trace_id", "_request_id", "_number", "origin", "deadline")

    def __init__(
        self,
        trace_id: str,
        request_id: str,
        origin: str = "service",
        deadline: Optional[float] = None,
    ) -> None:
        self._trace_id = trace_id
        self._request_id = request_id
        self._number = None
        self.origin = origin
        self.deadline = deadline

    @property
    def trace_id(self) -> str:
        """The end-to-end correlation id (formatted on first read)."""
        trace_id = self._trace_id
        if trace_id is None:
            trace_id = self._trace_id = _TRACE_TAG + format(self._number, "08x")
        return trace_id

    @property
    def request_id(self) -> str:
        """This submission's unique id (formatted on first read)."""
        request_id = self._request_id
        if request_id is None:
            request_id = self._request_id = format_request_id(self._number)
        return request_id

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"request_id={self.request_id!r}, origin={self.origin!r}, "
            f"deadline={self.deadline!r})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.request_id == other.request_id
            and self.origin == other.origin
            and self.deadline == other.deadline
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.request_id))

    @classmethod
    def new(
        cls,
        origin: str = "service",
        deadline: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> "TraceContext":
        """Mint a fresh context (joining ``trace_id`` if supplied).

        A freshly minted trace shares its counter value with the
        request id (``t-…-5`` owns ``r-…-5``): one request is one
        trace today and the pairing reads well in dumps.  Minting only
        stores the counter value — the id *strings* format lazily on
        first read, so a request that is never dumped or inspected
        never pays for formatting at all.
        """
        context = cls.__new__(cls)
        context._trace_id = trace_id
        context._request_id = None
        context._number = next(_REQUEST_COUNTER)
        context.origin = origin
        context.deadline = deadline
        return context

    @classmethod
    def from_number(
        cls,
        number: int,
        origin: str = "service.submit",
        deadline: Optional[float] = None,
    ) -> "TraceContext":
        """The context a :func:`mint_request_number` number stands for.

        This is the materialization half of the number-only ingress
        path: the serving tier stores just the counter value per
        request, and whichever read path first needs the full context
        (id strings, origin, deadline) rebuilds it here.  Ids still
        format lazily on first read.
        """
        context = cls.__new__(cls)
        context._trace_id = None
        context._request_id = None
        context._number = number
        context.origin = origin
        context.deadline = deadline
        return context

    def to_dict(self) -> Dict:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "origin": self.origin,
            "deadline": self.deadline,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            request_id=str(payload["request_id"]),
            origin=str(payload.get("origin", "service")),
            deadline=payload.get("deadline"),
        )


@dataclass(frozen=True)
class TraceSpan:
    """One timed region of a request's journey, with children.

    ``start_seconds`` is on the same monotonic clock as every other
    span of the trace; ``duration_seconds`` is exact for measured spans
    and exact-but-repositioned for stage spans reconstructed from
    duration splits (see module docstring).
    """

    name: str
    start_seconds: float
    duration_seconds: float
    attributes: Dict[str, object] = field(default_factory=dict)
    children: Tuple["TraceSpan", ...] = ()

    def walk(self) -> Iterator["TraceSpan"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["TraceSpan"]:
        """The first span named ``name`` in depth-first order."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceSpan":
        return cls(
            name=str(payload["name"]),
            start_seconds=float(payload["start_seconds"]),
            duration_seconds=float(payload["duration_seconds"]),
            attributes=dict(payload.get("attributes", {})),
            children=tuple(
                cls.from_dict(child) for child in payload.get("children", ())
            ),
        )

    def format_tree(self, indent: int = 0) -> str:
        """A human-readable flame-graph-in-text rendering."""
        lines: List[str] = []
        self._format_into(lines, indent)
        return "\n".join(lines)

    def _format_into(self, lines: List[str], indent: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
        lines.append(
            "  " * indent
            + f"{self.name:<10s} {1e3 * self.duration_seconds:9.3f} ms"
            + (f"  [{attrs}]" if attrs else "")
        )
        for child in self.children:
            child._format_into(lines, indent + 1)


def build_stage_spans(
    start_seconds: float,
    stage_seconds: Mapping[str, float],
    order: Tuple[str, ...] = ENGINE_STAGES,
) -> Tuple[TraceSpan, ...]:
    """Stage spans from a duration split, laid out back to back.

    Stages absent from ``stage_seconds`` are skipped; unknown extra
    stages are appended after the known order, sorted by name, so a
    future engine stage shows up rather than vanishing.
    """
    names = [name for name in order if name in stage_seconds]
    names += sorted(set(stage_seconds) - set(order))
    spans: List[TraceSpan] = []
    cursor = start_seconds
    for name in names:
        duration = float(stage_seconds[name])
        spans.append(
            TraceSpan(name=name, start_seconds=cursor, duration_seconds=duration)
        )
        cursor += duration
    return tuple(spans)


class RequestTrace:
    """The span tree and batch lineage attached to one ServiceResult.

    Construction is deliberately cheap: a trace stores the raw
    timestamps and a *reference* to the batch's shared stage-duration
    split, and only materializes :class:`TraceSpan` objects when
    :attr:`root` is first read.  The service builds one of these per
    request on the dispatch path, so the traced-on overhead gate in
    ``bench_service.py`` depends on this laziness (and on this being a
    ``__slots__`` class, not a dataclass) — keep the constructor to
    plain attribute stores.  Treat instances as immutable.

    Attributes
    ----------
    context:
        The request's :class:`TraceContext`.  The service hands the
        constructor a bare request *number* (from
        :func:`mint_request_number`) instead of a context object; the
        context materializes here on first read, so a request that is
        never inspected or dumped never allocates one at all.
    submitted_at / dispatched_at / completed_at:
        Loop-clock stamps: admission, start of the dispatch that
        answered (``None`` when the request never reached one), and
        resolution.
    solve_seconds:
        Duration of the solve that answered (shared by the batch).
    stage_durations:
        The engine's ``{stage: seconds}`` split for the dispatch —
        shared with every peer of the batch, never copied or mutated.
    solve_attributes:
        Annotations for the ``solve`` span (algorithm, rung, flush
        reason ...), also shared per batch.
    batch_sequence:
        Which :class:`~repro.service.batcher.MicroBatcher` flush the
        request rode (monotonically increasing per service); ``-1``
        when it never reached a dispatch.
    batch_peers:
        Request ids that shared the dispatch (including this one), in
        flush order — "who shared my bucket" for incident correlation.
    bucket_satellites / bucket_row:
        The same-satellite-count engine bucket the epoch solved in and
        the row it occupied there; ``-1`` when unsolved (screened,
        timed out while queued) or when the scalar ladder answered.
    """

    __slots__ = (
        "_context",
        "submitted_at",
        "completed_at",
        "dispatched_at",
        "solve_seconds",
        "stage_durations",
        "solve_attributes",
        "batch_sequence",
        "_peers",
        "bucket_satellites",
        "bucket_row",
        "_deadline",
        "_root",
    )

    def __init__(
        self,
        context,  # TraceContext, or an int from mint_request_number
        submitted_at: float,
        completed_at: float,
        dispatched_at: Optional[float] = None,
        solve_seconds: float = 0.0,
        stage_durations: Optional[Mapping[str, float]] = None,
        solve_attributes: Optional[Mapping[str, object]] = None,
        batch_sequence: int = -1,
        batch_peers: Tuple[str, ...] = (),
        bucket_satellites: int = -1,
        bucket_row: int = -1,
        deadline: Optional[float] = None,
        _root: Optional[TraceSpan] = None,
    ) -> None:
        self._context = context
        self.submitted_at = submitted_at
        self.completed_at = completed_at
        self.dispatched_at = dispatched_at
        self.solve_seconds = solve_seconds
        self.stage_durations = stage_durations
        self.solve_attributes = solve_attributes
        self.batch_sequence = batch_sequence
        self._peers = batch_peers
        self.bucket_satellites = bucket_satellites
        self.bucket_row = bucket_row
        # Carried only so a number-context materializes with the
        # request's deadline; ignored when context is already built.
        self._deadline = deadline
        # The lazily built span tree; from_dict primes it with the
        # serialized tree so round-trips preserve the rendered form.
        self._root = _root

    def __repr__(self) -> str:
        return (
            f"RequestTrace(request_id={self.request_id!r}, "
            f"batch_sequence={self.batch_sequence}, "
            f"bucket_satellites={self.bucket_satellites}, "
            f"bucket_row={self.bucket_row})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RequestTrace)
            and self.to_dict() == other.to_dict()
        )

    __hash__ = None  # mutable cache inside; not hashable

    @property
    def context(self) -> TraceContext:
        """The request's :class:`TraceContext`, materialized on first
        read when the service handed the constructor a bare request
        number (see :func:`mint_request_number`)."""
        context = self._context
        if type(context) is int:
            context = self._context = TraceContext.from_number(
                context, deadline=self._deadline
            )
        return context

    @property
    def request_id(self) -> str:
        """Shorthand for ``context.request_id``."""
        return self.context.request_id

    @property
    def batch_peers(self) -> Tuple[str, ...]:
        """Request ids that shared the dispatch, in flush order.

        The service hands every trace of a flush one *shared* tuple of
        peer request numbers (or :class:`TraceContext` objects); the id
        strings materialize here on first read (and are cached back,
        shared by the whole flush), so incident correlation pays for
        formatting and the serving path does not.
        """
        peers = self._peers
        if peers and not isinstance(peers[0], str):
            if type(peers[0]) is int:
                peers = tuple(format_request_id(number) for number in peers)
            else:
                peers = tuple(context.request_id for context in peers)
            self._peers = peers
        return peers

    @property
    def root(self) -> TraceSpan:
        """The ``request`` span; children are ``queue`` and (when the
        request reached a solve) ``solve`` with the engine's stage
        spans beneath.  Built on first access, then cached."""
        if self._root is None:
            self._root = self._build_root()
        return self._root

    def _build_root(self) -> TraceSpan:
        children: List[TraceSpan] = [
            TraceSpan(
                name="queue",
                start_seconds=self.submitted_at,
                duration_seconds=(
                    self.dispatched_at
                    if self.dispatched_at is not None
                    else self.completed_at
                )
                - self.submitted_at,
            )
        ]
        if self.dispatched_at is not None:
            children.append(
                TraceSpan(
                    name="solve",
                    start_seconds=self.dispatched_at,
                    duration_seconds=self.solve_seconds,
                    attributes=dict(self.solve_attributes or {}),
                    children=(
                        build_stage_spans(self.dispatched_at, self.stage_durations)
                        if self.stage_durations
                        else ()
                    ),
                )
            )
        return TraceSpan(
            name="request",
            start_seconds=self.submitted_at,
            duration_seconds=self.completed_at - self.submitted_at,
            attributes={"origin": self.context.origin},
            children=tuple(children),
        )

    def stage_seconds(self) -> Dict[str, float]:
        """Flat ``{stage: seconds}`` over every non-root span."""
        stages: Dict[str, float] = {}
        for span in self.root.walk():
            if span is self.root:
                continue
            stages[span.name] = stages.get(span.name, 0.0) + span.duration_seconds
        return stages

    @property
    def slowest_stage(self) -> Optional[str]:
        """The *leaf* stage where most of the request's time went."""
        leaves = {
            span.name: span.duration_seconds
            for span in self.root.walk()
            if span is not self.root and not span.children
        }
        if not leaves:
            return None
        return max(leaves, key=lambda name: leaves[name])

    def to_dict(self) -> Dict:
        return {
            "context": self.context.to_dict(),
            "root": self.root.to_dict(),
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
            "dispatched_at": self.dispatched_at,
            "solve_seconds": self.solve_seconds,
            "batch_sequence": self.batch_sequence,
            "batch_peers": list(self.batch_peers),
            "bucket_satellites": self.bucket_satellites,
            "bucket_row": self.bucket_row,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RequestTrace":
        root = (
            TraceSpan.from_dict(payload["root"])
            if payload.get("root") is not None
            else None
        )
        submitted_at = float(payload.get("submitted_at", 0.0))
        return cls(
            context=TraceContext.from_dict(payload["context"]),
            submitted_at=submitted_at,
            completed_at=float(payload.get("completed_at", submitted_at)),
            dispatched_at=payload.get("dispatched_at"),
            solve_seconds=float(payload.get("solve_seconds", 0.0)),
            batch_sequence=int(payload.get("batch_sequence", -1)),
            batch_peers=tuple(payload.get("batch_peers", ())),
            bucket_satellites=int(payload.get("bucket_satellites", -1)),
            bucket_row=int(payload.get("bucket_row", -1)),
            _root=root,
        )

    def format(self) -> str:
        """Multi-line human rendering (the ``inspect`` CLI's output)."""
        lineage = (
            f"batch #{self.batch_sequence} "
            f"({len(self.batch_peers)} peers), "
            f"bucket m={self.bucket_satellites} row {self.bucket_row}"
            if self.batch_sequence >= 0
            else "never dispatched"
        )
        header = (
            f"request {self.context.request_id} "
            f"(trace {self.context.trace_id}, origin {self.context.origin})\n"
            f"  lineage: {lineage}"
        )
        return header + "\n" + self.root.format_tree(indent=1)


def assemble_request_trace(
    context,  # TraceContext, or an int from mint_request_number
    submitted_at: float,
    completed_at: float,
    dispatched_at: Optional[float] = None,
    solve_seconds: float = 0.0,
    stage_seconds: Optional[Mapping[str, float]] = None,
    solve_attributes: Optional[Mapping[str, object]] = None,
    batch_sequence: int = -1,
    batch_peers: Tuple[str, ...] = (),
    bucket_satellites: int = -1,
    bucket_row: int = -1,
    deadline: Optional[float] = None,
) -> RequestTrace:
    """The standard service trace for one finished request.

    ``dispatched_at=None`` means the request never reached a solve
    (timed out while queued, cancelled, internal error): the tree is
    just ``request → queue``.  Dispatch-path hot: stores the raw
    numbers, the span tree builds lazily on first read.
    """
    if completed_at < submitted_at:
        raise ConfigurationError("completed_at must be >= submitted_at")
    return RequestTrace(
        context=context,
        submitted_at=submitted_at,
        completed_at=completed_at,
        dispatched_at=dispatched_at,
        solve_seconds=solve_seconds,
        stage_durations=stage_seconds,
        solve_attributes=solve_attributes,
        batch_sequence=batch_sequence,
        batch_peers=batch_peers,
        bucket_satellites=bucket_satellites,
        bucket_row=bucket_row,
        deadline=deadline,
    )
