"""repro.telemetry — runtime observability for the positioning stack.

A dependency-free metrics registry (counters, gauges, fixed-bucket
histograms, all with label support), a span tracer on the monotonic
clock, and exporters (Prometheus text, JSON snapshot).  The package
also owns the **installed** telemetry state: call sites throughout the
library fetch the active registry/tracer through :func:`get_registry`
and :func:`get_tracer`, which default to shared no-op implementations —
so an uninstrumented run pays only an attribute check per event, and
expensive derived observations (condition numbers) are gated on
``get_registry().enabled``.

Typical use::

    from repro import telemetry

    registry, tracer = telemetry.install()       # turn telemetry on
    ... run receivers / engines / replays ...
    print(telemetry.to_prometheus_text(registry))
    telemetry.uninstall()                        # back to no-op

or scoped::

    with telemetry.capture() as (registry, tracer):
        engine.solve_stream(epochs)
    snapshot = telemetry.to_json_snapshot(registry, tracer)

Logging rides along: the package installs a ``NullHandler`` on the
``"repro"`` logger (library best practice — silent by default), and
instrumented modules log noteworthy events (NR fallbacks, residual
gate trips, chunk seams) through ordinary ``logging.getLogger(__name__)``
loggers, so ``logging.basicConfig(level=logging.DEBUG)`` lights the
whole stack up.
"""

from __future__ import annotations

import logging
import os
import sys
from contextlib import contextmanager
from typing import Optional, Tuple

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    CounterChild,
    GaugeChild,
    HistogramChild,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    aggregate_registries,
    registry_from_snapshot,
)
from repro.telemetry.tracer import (
    NullTracer,
    NULL_TRACER,
    SpanRecord,
    SpanTracer,
)
from repro.telemetry.exporters import (
    to_json_snapshot,
    to_prometheus_fleet_text,
    to_prometheus_text,
    write_snapshot,
)
from repro.telemetry.trace import (
    ENGINE_STAGES,
    RequestTrace,
    TraceContext,
    TraceSpan,
    assemble_request_trace,
    build_stage_spans,
    format_request_id,
    mint_request_number,
    reset_trace_identity,
)
from repro.telemetry.recorder import (
    INCIDENT_FORMAT,
    TRIGGERS,
    FixRecord,
    FlightRecorder,
    NullRecorder,
    NULL_RECORDER,
    RecorderConfig,
    get_recorder,
    install_recorder,
    replay_incident,
    solve_captured,
    uninstall_recorder,
)
from repro.telemetry.slo import (
    QuantileSketch,
    SloConfig,
    SloTracker,
    WindowedQuantiles,
)
from repro.telemetry.statusd import StatusServer

# Library-standard logging hygiene: the package never configures the
# root logger, and stays silent unless the application opts in.
logging.getLogger("repro").addHandler(logging.NullHandler())

_active_registry = NULL_REGISTRY
_active_tracer = NULL_TRACER


def get_registry():
    """The active metrics registry (a no-op registry by default)."""
    return _active_registry


def get_tracer():
    """The active span tracer (a no-op tracer by default)."""
    return _active_tracer


def is_enabled() -> bool:
    """Whether real telemetry is currently installed."""
    return _active_registry.enabled


def install(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> Tuple[MetricsRegistry, SpanTracer]:
    """Install a real registry/tracer process-wide and return them.

    Passing existing instances lets an application aggregate several
    runs into one scrape target; omitting them creates fresh ones.
    """
    global _active_registry, _active_tracer
    _active_registry = registry if registry is not None else MetricsRegistry()
    _active_tracer = tracer if tracer is not None else SpanTracer()
    return _active_registry, _active_tracer


def uninstall() -> None:
    """Return to the default no-op registry and tracer."""
    global _active_registry, _active_tracer
    _active_registry = NULL_REGISTRY
    _active_tracer = NULL_TRACER


def _reinit_after_fork() -> None:
    """Reset process-scoped mutable state in a freshly forked child.

    A forked worker inherits the parent's installed registry/tracer
    (its metrics would silently diverge from the parent's scrape), the
    active flight recorder, the trace id prefix and request counter
    (its ids would *collide* with the parent's), and the facade's
    one-slot solver cache (whose predictor state is mid-stream).  None
    of these are meaningful across the fork boundary, so the child
    starts clean: shard workers install their own registry explicitly,
    and everything else returns to the no-op defaults.

    Registered once via :func:`os.register_at_fork` at first import of
    this package; spawn-started processes re-import from scratch and
    need nothing.
    """
    global _active_registry, _active_tracer
    _active_registry = NULL_REGISTRY
    _active_tracer = NULL_TRACER
    from repro.telemetry import recorder as _recorder_module
    from repro.telemetry import trace as _trace_module

    _recorder_module._active_recorder = NULL_RECORDER
    _trace_module.reset_trace_identity()
    # The api facade may not be imported (telemetry has no dependency
    # on it); reset its solver cache only if it already exists.
    api_module = sys.modules.get("repro.api")
    if api_module is not None:
        api_module._LAST_BUILT = (None, None)


if hasattr(os, "register_at_fork"):  # not on every platform
    os.register_at_fork(after_in_child=_reinit_after_fork)


@contextmanager
def capture(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
):
    """Scoped telemetry: install on entry, restore the previous
    registry/tracer on exit, yield ``(registry, tracer)``."""
    previous = (_active_registry, _active_tracer)
    try:
        yield install(registry, tracer)
    finally:
        globals()["_active_registry"], globals()["_active_tracer"] = previous


__all__ = [
    "DEFAULT_BUCKETS",
    "CounterChild",
    "GaugeChild",
    "HistogramChild",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SpanRecord",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "install",
    "uninstall",
    "capture",
    "aggregate_registries",
    "registry_from_snapshot",
    "to_prometheus_text",
    "to_prometheus_fleet_text",
    "to_json_snapshot",
    "write_snapshot",
    # per-request trace plane
    "ENGINE_STAGES",
    "TraceContext",
    "TraceSpan",
    "RequestTrace",
    "build_stage_spans",
    "assemble_request_trace",
    "mint_request_number",
    "reset_trace_identity",
    "format_request_id",
    # anomaly flight recorder
    "INCIDENT_FORMAT",
    "TRIGGERS",
    "RecorderConfig",
    "FixRecord",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "install_recorder",
    "uninstall_recorder",
    "replay_incident",
    "solve_captured",
    # SLO engine
    "QuantileSketch",
    "WindowedQuantiles",
    "SloConfig",
    "SloTracker",
    # status endpoints
    "StatusServer",
]
