"""Span-based tracing with monotonic-clock timing and nesting.

Where the registry answers "how often / how large", spans answer
"where did the time go": each span is one timed region of the
pipeline (a whole ``solve_stream`` call, one bucket's batched solve,
one replay chunk), timed with :func:`time.perf_counter_ns` — the
monotonic clock, immune to wall-clock steps — and recorded with its
nesting depth and enclosing span, so a snapshot reads as a flame
graph in list form.

Like the registry, the tracer comes in a real and a null flavour; the
null tracer's :meth:`NullTracer.span` hands back one shared context
manager whose enter/exit do nothing, so ``with tracer.span(...)``
costs two method calls when telemetry is off.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        The region's name (dotted convention: ``engine.solve_bucket``).
    start_ns:
        :func:`time.perf_counter_ns` at entry — monotonic, comparable
        only to other spans of the same process.
    duration_ns:
        Elapsed nanoseconds (for externally timed spans recorded via
        :meth:`SpanTracer.record`, the measured duration).
    depth:
        Nesting depth at entry; 0 for root spans.
    parent:
        Name of the enclosing span, or ``None`` for roots.
    attributes:
        Free-form key/value annotations (bucket size, chunk index...).
    """

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    parent: Optional[str]
    attributes: Dict[str, object] = field(default_factory=dict)


class _ActiveSpan:
    """Context manager produced by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_name", "_attributes", "_start_ns", "_depth", "_parent")

    def __init__(self, tracer: "SpanTracer", name: str, attributes: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self._name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_ns = time.perf_counter_ns() - self._start_ns
        stack = self._tracer._stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        self._tracer._finish(
            SpanRecord(
                name=self._name,
                start_ns=self._start_ns,
                duration_ns=duration_ns,
                depth=self._depth,
                parent=self._parent,
                attributes=self._attributes,
            )
        )
        return False


class SpanTracer:
    """Collects finished spans, bounded to the most recent ``max_spans``.

    Nesting is tracked per thread (a thread-local span stack), so
    concurrent replay workers on the thread backend do not corrupt
    each other's parent/depth bookkeeping.
    """

    enabled = True

    def __init__(self, max_spans: int = 10_000) -> None:
        if max_spans < 1:
            raise ConfigurationError("max_spans must be at least 1")
        self._records: Deque[SpanRecord] = deque(maxlen=int(max_spans))
        self._local = threading.local()

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish(self, record: SpanRecord) -> None:
        self._records.append(record)

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        """A context manager timing one region::

            with tracer.span("engine.solve_bucket", satellite_count=8):
                ...
        """
        return _ActiveSpan(self, name, attributes)

    def record(self, name: str, duration_ns: int, **attributes: object) -> None:
        """Record an externally timed span (e.g. measured in a worker
        process whose tracer is not this one); it is attached at the
        calling thread's current nesting position."""
        stack = self._stack()
        self._finish(
            SpanRecord(
                name=name,
                start_ns=time.perf_counter_ns() - int(duration_ns),
                duration_ns=int(duration_ns),
                depth=len(stack),
                parent=stack[-1] if stack else None,
                attributes=attributes,
            )
        )

    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        """Finished spans, oldest first."""
        return tuple(self._records)

    def snapshot(self) -> List[Dict]:
        """JSON-ready list of finished spans."""
        return [
            {
                "name": record.name,
                "start_ns": record.start_ns,
                "duration_ns": record.duration_ns,
                "depth": record.depth,
                "parent": record.parent,
                "attributes": dict(record.attributes),
            }
            for record in self._records
        ]

    def reset(self) -> None:
        """Drop every finished span."""
        self._records.clear()


class _NullSpan:
    """Shared no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: spans are free and nothing is recorded."""

    enabled = False

    def span(self, name: str, **attributes: object) -> _NullSpan:
        """The shared no-op context manager."""
        return _NULL_SPAN

    def record(self, name: str, duration_ns: int, **attributes: object) -> None:
        """No-op."""

    @property
    def spans(self) -> Tuple[SpanRecord, ...]:
        """Always empty."""
        return ()

    def snapshot(self) -> List[Dict]:
        """Always empty."""
        return []

    def reset(self) -> None:
        """No-op."""


#: Process-wide shared null tracer (stateless, so one suffices).
NULL_TRACER = NullTracer()
