"""Classical Keplerian orbital elements and ECEF propagation.

:class:`OrbitalElements` is the almanac-level description of a GPS
orbit: a pure two-body ellipse whose ascending node drifts with earth
rotation when expressed in ECEF.  The broadcast-ephemeris model in
:mod:`repro.orbits.ephemeris` extends this with the IS-GPS-200
perturbation corrections; this class is what the constellation builder
starts from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import EARTH_GM, EARTH_ROTATION_RATE
from repro.errors import ConfigurationError
from repro.orbits.kepler import eccentric_to_true_anomaly, solve_kepler
from repro.timebase import GpsTime


@dataclass(frozen=True)
class OrbitalElements:
    """Keplerian elements referenced to an epoch on the GPS time scale.

    Attributes
    ----------
    semi_major_axis:
        Ellipse semi-major axis ``a`` in meters.
    eccentricity:
        Eccentricity ``e`` in ``[0, 1)``.
    inclination:
        Inclination ``i`` in radians.
    raan:
        Right ascension of the ascending node at the epoch, measured in
        the ECEF frame (i.e. the geographic longitude of the node at
        ``epoch``), radians.
    argument_of_perigee:
        Argument of perigee ``omega`` in radians.
    mean_anomaly:
        Mean anomaly ``M0`` at the epoch, radians.
    epoch:
        Reference instant the angular elements refer to.
    """

    semi_major_axis: float
    eccentricity: float
    inclination: float
    raan: float
    argument_of_perigee: float
    mean_anomaly: float
    epoch: GpsTime

    def __post_init__(self) -> None:
        if self.semi_major_axis <= 0:
            raise ConfigurationError("semi_major_axis must be positive")
        if not 0.0 <= self.eccentricity < 1.0:
            raise ConfigurationError("eccentricity must be in [0, 1)")
        if not 0.0 <= self.inclination <= math.pi:
            raise ConfigurationError("inclination must be in [0, pi]")

    @property
    def mean_motion(self) -> float:
        """Mean motion ``n = sqrt(GM / a^3)`` in rad/s."""
        return math.sqrt(EARTH_GM / self.semi_major_axis**3)

    @property
    def orbital_period(self) -> float:
        """Orbital period in seconds."""
        return 2.0 * math.pi / self.mean_motion

    def position_ecef(self, time: GpsTime) -> np.ndarray:
        """Satellite ECEF position (meters) at ``time``.

        The two-body orbit is propagated in an inertial frame and then
        rotated into ECEF by letting the node longitude regress at the
        earth rotation rate.
        """
        dt = time.to_gps_seconds() - self.epoch.to_gps_seconds()

        mean_anomaly = self.mean_anomaly + self.mean_motion * dt
        eccentric = solve_kepler(mean_anomaly, self.eccentricity)
        true_anomaly = eccentric_to_true_anomaly(eccentric, self.eccentricity)

        radius = self.semi_major_axis * (1.0 - self.eccentricity * math.cos(eccentric))
        argument_of_latitude = true_anomaly + self.argument_of_perigee

        # Position in the orbital plane.
        x_plane = radius * math.cos(argument_of_latitude)
        y_plane = radius * math.sin(argument_of_latitude)

        # Node longitude in ECEF: fixed inertially, so it regresses at
        # the earth rotation rate in the rotating frame.
        node = self.raan - EARTH_ROTATION_RATE * dt
        cos_node, sin_node = math.cos(node), math.sin(node)
        cos_inc, sin_inc = math.cos(self.inclination), math.sin(self.inclination)

        x = x_plane * cos_node - y_plane * cos_inc * sin_node
        y = x_plane * sin_node + y_plane * cos_inc * cos_node
        z = y_plane * sin_inc
        return np.array([x, y, z], dtype=float)
