"""Nominal constellation almanac generator.

The paper's data sets see 8-12 satellites per epoch from a 31-satellite
GPS constellation (footnote 2: 31 active satellites in March 2008).
This module fabricates constellations with nominal geometry — for GPS,
six orbital planes at 55 degrees inclination, right ascensions spaced
evenly, satellites phased within and across planes — and realistic
per-satellite clock errors, returning one broadcast ephemeris per space
vehicle.  Other GNSS (GLONASS, Galileo, BeiDou MEO) reuse the same
Walker-style layout on their own orbital shells from
:data:`repro.constellation.systems.ORBIT_SHELLS`.

``nominal_gps_almanac`` is the deprecated GPS-only spelling; use
:func:`nominal_almanac` (which takes a ``system`` code) instead.
"""

from __future__ import annotations

import math
import warnings
from typing import Any, List, Optional

import numpy as np

from repro.constants import GPS_ACTIVE_SATELLITE_COUNT
from repro.constellation.systems import ORBIT_SHELLS, normalize_system
from repro.errors import ConfigurationError
from repro.orbits.elements import OrbitalElements
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.timebase import GpsTime

#: How many satellites each plane carries in the 31-SV GPS layout
#: (planes A..F).  31 = 6 + 5 + 5 + 5 + 5 + 5.
_PLANE_SLOT_COUNTS = (6, 5, 5, 5, 5, 5)

#: Typical broadcast clock bias magnitude (seconds): tens of
#: microseconds, matching real af0 values.
_TYPICAL_CLOCK_BIAS = 2e-5

#: Typical broadcast clock drift magnitude (s/s): ~1e-11 for the
#: rubidium/cesium standards flown on GPS satellites.
_TYPICAL_CLOCK_DRIFT = 1e-11


def nominal_almanac(
    epoch: GpsTime,
    satellite_count: int = GPS_ACTIVE_SATELLITE_COUNT,
    rng: Optional[np.random.Generator] = None,
    system: str = "G",
) -> List[BroadcastEphemeris]:
    """Fabricate a nominal constellation for one GNSS system.

    Parameters
    ----------
    epoch:
        Reference time of all generated ephemerides (``toe``/``toc``).
    satellite_count:
        Number of space vehicles, at most 63 (PRN space).  The default
        31 matches the paper's quoted GPS constellation size.
    rng:
        Source of the small per-satellite perturbations (eccentricity,
        phase jitter, clock polynomial).  ``None`` gives the unperturbed
        deterministic layout with zero clock errors — useful for tests
        that need exact geometry.
    system:
        RINEX system code selecting the orbital shell (``"G"`` GPS,
        ``"R"`` GLONASS, ``"E"`` Galileo, ``"C"`` BeiDou).  PRNs are
        numbered ``1..satellite_count`` *within* the system; callers
        mixing systems must key satellites by ``(system, prn)``.

    Returns
    -------
    list of BroadcastEphemeris
        One ephemeris per satellite, PRNs ``1..satellite_count``.
    """
    if not 1 <= satellite_count <= 63:
        raise ConfigurationError(
            f"satellite_count must be in [1, 63], got {satellite_count}"
        )
    shell = ORBIT_SHELLS[normalize_system(system)]

    ephemerides: List[BroadcastEphemeris] = []
    prn = 1
    plane_count = shell.plane_count
    assignments = _slot_assignments(satellite_count, plane_count, system=system)

    for plane_index, slots_in_plane in enumerate(assignments):
        raan = 2.0 * math.pi * plane_index / plane_count
        for slot_index in range(slots_in_plane):
            # In-plane spacing plus an inter-plane phase offset so
            # satellites in adjacent planes are staggered — this is what
            # gives GNSS constellations their uniform sky coverage.
            mean_anomaly = (
                2.0 * math.pi * slot_index / max(slots_in_plane, 1)
                + 2.0 * math.pi * plane_index / (plane_count * max(slots_in_plane, 1))
            )

            eccentricity = 0.0
            phase_jitter = 0.0
            af0 = af1 = 0.0
            if rng is not None:
                eccentricity = float(rng.uniform(0.001, 0.02))
                phase_jitter = float(rng.normal(0.0, math.radians(2.0)))
                af0 = float(rng.normal(0.0, _TYPICAL_CLOCK_BIAS))
                af1 = float(rng.normal(0.0, _TYPICAL_CLOCK_DRIFT))

            elements = OrbitalElements(
                semi_major_axis=shell.semi_major_axis,
                eccentricity=eccentricity,
                inclination=shell.inclination,
                raan=raan,
                argument_of_perigee=0.0,
                mean_anomaly=mean_anomaly + phase_jitter,
                epoch=epoch,
            )
            ephemerides.append(
                BroadcastEphemeris.from_elements(prn, elements, af0=af0, af1=af1)
            )
            prn += 1

    return ephemerides


def _slot_assignments(
    satellite_count: int, plane_count: int, system: str = "G"
) -> List[int]:
    """Distribute ``satellite_count`` satellites over ``plane_count`` planes.

    Uses the canonical 31-SV GPS layout when it applies; otherwise
    spreads satellites as evenly as possible.
    """
    if (
        system == "G"
        and satellite_count == sum(_PLANE_SLOT_COUNTS)
        and plane_count == len(_PLANE_SLOT_COUNTS)
    ):
        return list(_PLANE_SLOT_COUNTS)
    base, extra = divmod(satellite_count, plane_count)
    return [base + (1 if plane < extra else 0) for plane in range(plane_count)]


def _deprecated_nominal_gps_almanac(
    epoch: GpsTime,
    satellite_count: int = GPS_ACTIVE_SATELLITE_COUNT,
    rng: Optional[np.random.Generator] = None,
) -> List[BroadcastEphemeris]:
    """Deprecated GPS-only spelling of :func:`nominal_almanac`."""
    return nominal_almanac(epoch, satellite_count, rng, system="G")


def __getattr__(name: str) -> Any:
    # PEP 562 deprecation shim: the GPS-only name keeps working but
    # steers callers toward the system-aware constructor.
    if name == "nominal_gps_almanac":
        warnings.warn(
            "nominal_gps_almanac is deprecated; use "
            "nominal_almanac(..., system='G') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _deprecated_nominal_gps_almanac
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
