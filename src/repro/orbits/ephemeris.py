"""Broadcast ephemeris in the IS-GPS-200 parameterization.

Real GPS receivers never see Keplerian elements directly; they decode a
broadcast ephemeris whose sixteen parameters describe the orbit plus
slowly varying perturbations (harmonic corrections, rates of the node
and inclination) and a satellite clock polynomial.  The paper's data
sets come from CORS stations whose RINEX navigation files carry exactly
these parameters, so our simulator speaks the same language: the
constellation generator emits :class:`BroadcastEphemeris` records, the
RINEX writer serializes them, and both the signal simulator and any
receiver-side consumer evaluate satellite positions through the single
implementation below.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.constants import EARTH_GM, EARTH_ROTATION_RATE, SECONDS_PER_WEEK
from repro.errors import ConfigurationError, EphemerisError
from repro.orbits.elements import OrbitalElements
from repro.orbits.kepler import solve_kepler, eccentric_to_true_anomaly
from repro.timebase import GpsTime
from repro.utils.mathutil import wrap_angle


@dataclass(frozen=True)
class BroadcastEphemeris:
    """One satellite's broadcast ephemeris + clock model.

    Field names follow IS-GPS-200 (and RINEX navigation files):

    * ``sqrt_a`` — square root of the semi-major axis (m^0.5)
    * ``eccentricity``, ``i0``, ``omega0``, ``omega``, ``m0`` — Keplerian
      elements at the ephemeris reference time ``toe`` (``omega0`` is the
      node longitude at the *week* epoch, per IS-GPS-200 convention)
    * ``delta_n`` — mean-motion correction (rad/s)
    * ``omega_dot`` — rate of right ascension (rad/s)
    * ``idot`` — rate of inclination (rad/s)
    * ``cuc, cus`` — argument-of-latitude harmonic corrections (rad)
    * ``crc, crs`` — orbit-radius harmonic corrections (m)
    * ``cic, cis`` — inclination harmonic corrections (rad)
    * ``af0, af1, af2`` — clock bias (s), drift (s/s), drift rate (s/s^2)
      relative to the clock reference time ``toc``
    """

    prn: int
    toe: GpsTime
    sqrt_a: float
    eccentricity: float
    i0: float
    omega0: float
    omega: float
    m0: float
    delta_n: float = 0.0
    omega_dot: float = 0.0
    idot: float = 0.0
    cuc: float = 0.0
    cus: float = 0.0
    crc: float = 0.0
    crs: float = 0.0
    cic: float = 0.0
    cis: float = 0.0
    af0: float = 0.0
    af1: float = 0.0
    af2: float = 0.0
    toc: GpsTime = None  # type: ignore[assignment]
    fit_interval_seconds: float = 4.0 * 3600.0

    def __post_init__(self) -> None:
        if not 1 <= self.prn <= 63:
            raise ConfigurationError(f"PRN must be in [1, 63], got {self.prn}")
        if self.sqrt_a <= 0:
            raise ConfigurationError("sqrt_a must be positive")
        if not 0.0 <= self.eccentricity < 1.0:
            raise ConfigurationError("eccentricity must be in [0, 1)")
        if self.fit_interval_seconds <= 0:
            raise ConfigurationError("fit_interval_seconds must be positive")
        if self.toc is None:
            object.__setattr__(self, "toc", self.toe)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_elements(
        cls,
        prn: int,
        elements: OrbitalElements,
        **overrides: float,
    ) -> "BroadcastEphemeris":
        """Build a (perturbation-free) broadcast ephemeris from classical
        elements.

        The resulting record reproduces ``elements.position_ecef`` exactly
        when all correction terms are zero, which lets tests cross-check
        the two propagators against each other.
        """
        # IS-GPS-200 defines omega0 as the node longitude at the start of
        # the GPS week; OrbitalElements.raan is the node longitude at the
        # element epoch.  Convert by adding back the earth rotation that
        # accumulates between week start and toe.
        omega0 = elements.raan + EARTH_ROTATION_RATE * elements.epoch.seconds_of_week
        return cls(
            prn=prn,
            toe=elements.epoch,
            sqrt_a=math.sqrt(elements.semi_major_axis),
            eccentricity=elements.eccentricity,
            i0=elements.inclination,
            omega0=omega0,
            omega=elements.argument_of_perigee,
            m0=elements.mean_anomaly,
            **overrides,
        )

    def with_clock(self, af0: float, af1: float = 0.0, af2: float = 0.0) -> "BroadcastEphemeris":
        """Return a copy with the satellite clock polynomial replaced."""
        return replace(self, af0=af0, af1=af1, af2=af2)

    def advanced_to(self, new_toe: GpsTime) -> "BroadcastEphemeris":
        """A fresh upload describing the same orbit from a later ``toe``.

        This is what the control segment does every few hours: re-issue
        the ephemeris with parameters referenced to a new epoch so user
        equations always evaluate near the reference time (small
        ``tk``), inside the fit interval.  The orbital elements are
        advanced analytically (mean anomaly by the corrected mean
        motion, node and inclination by their rates) and the clock
        polynomial is re-expanded about the new ``toc``, so positions
        and clock offsets from the old and new records agree to
        numerical precision at any common instant.
        """
        a = self.sqrt_a * self.sqrt_a
        n = math.sqrt(EARTH_GM / a**3) + self.delta_n
        dt = new_toe.to_gps_seconds() - self.toe.to_gps_seconds()
        dt_clock = new_toe.to_gps_seconds() - self.toc.to_gps_seconds()

        # IS-GPS-200's omega0 is referenced to the start of the *week*
        # of toe, so crossing a week boundary shifts the reference by a
        # full week of earth rotation per week crossed.  Matching the
        # node term omega0 + (omega_dot - w_e) tk - w_e toe_sow between
        # the old and new parameterizations gives
        # omega0' = omega0 + omega_dot dt - w_e * week_shift.
        week_shift = (new_toe.week - self.toe.week) * SECONDS_PER_WEEK
        new_omega0 = (
            self.omega0
            + self.omega_dot * dt
            - EARTH_ROTATION_RATE * week_shift
        )
        return replace(
            self,
            toe=new_toe,
            toc=new_toe,
            m0=wrap_angle(self.m0 + n * dt),
            omega0=wrap_angle(new_omega0),
            i0=self.i0 + self.idot * dt,
            af0=self.af0 + self.af1 * dt_clock + self.af2 * dt_clock * dt_clock,
            af1=self.af1 + 2.0 * self.af2 * dt_clock,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def time_from_toe(self, time: GpsTime) -> float:
        """Seconds from the ephemeris reference time, week-wrapped."""
        return time.time_of_week_difference(self.toe)

    def is_valid_at(self, time: GpsTime) -> bool:
        """Whether ``time`` falls inside the ephemeris fit interval."""
        return abs(self.time_from_toe(time)) <= self.fit_interval_seconds

    def satellite_position(self, time: GpsTime, strict: bool = False) -> np.ndarray:
        """Satellite ECEF position (meters) at GPS time ``time``.

        Implements the IS-GPS-200 user algorithm.  With ``strict=True``
        an :class:`EphemerisError` is raised outside the fit interval,
        mirroring receivers that refuse stale ephemerides.
        """
        if strict and not self.is_valid_at(time):
            raise EphemerisError(
                f"ephemeris for PRN {self.prn} is stale at {time} "
                f"(fit interval {self.fit_interval_seconds} s around {self.toe})"
            )

        a = self.sqrt_a * self.sqrt_a
        n0 = math.sqrt(EARTH_GM / a**3)
        tk = self.time_from_toe(time)

        n = n0 + self.delta_n
        mk = self.m0 + n * tk
        ek = solve_kepler(mk, self.eccentricity)
        vk = eccentric_to_true_anomaly(ek, self.eccentricity)

        phi = vk + self.omega  # argument of latitude
        sin_2phi, cos_2phi = math.sin(2.0 * phi), math.cos(2.0 * phi)

        delta_u = self.cus * sin_2phi + self.cuc * cos_2phi
        delta_r = self.crs * sin_2phi + self.crc * cos_2phi
        delta_i = self.cis * sin_2phi + self.cic * cos_2phi

        u = phi + delta_u
        r = a * (1.0 - self.eccentricity * math.cos(ek)) + delta_r
        i = self.i0 + delta_i + self.idot * tk

        x_plane = r * math.cos(u)
        y_plane = r * math.sin(u)

        # Corrected longitude of ascending node, in the rotating frame.
        node = (
            self.omega0
            + (self.omega_dot - EARTH_ROTATION_RATE) * tk
            - EARTH_ROTATION_RATE * self.toe.seconds_of_week
        )
        cos_node, sin_node = math.cos(node), math.sin(node)
        cos_i, sin_i = math.cos(i), math.sin(i)

        x = x_plane * cos_node - y_plane * cos_i * sin_node
        y = x_plane * sin_node + y_plane * cos_i * cos_node
        z = y_plane * sin_i
        return np.array([x, y, z], dtype=float)

    def satellite_velocity(self, time: GpsTime, half_step: float = 0.5) -> np.ndarray:
        """Satellite ECEF velocity (m/s) by symmetric differencing.

        Sufficiently accurate (<< 1 mm/s error) for visibility and
        Doppler bookkeeping; the positioning algorithms themselves never
        need velocity.
        """
        before = self.satellite_position(time - half_step)
        after = self.satellite_position(time + half_step)
        return (after - before) / (2.0 * half_step)

    def satellite_clock_offset(self, time: GpsTime) -> float:
        """Satellite clock offset (seconds, positive = clock fast) at ``time``.

        Evaluates the broadcast polynomial ``af0 + af1 dt + af2 dt^2``
        relative to the clock reference time.  Relativistic eccentricity
        correction is handled by the signal simulator, not here, to keep
        this a pure polynomial like the broadcast message.
        """
        dt = time.time_of_week_difference(self.toc)
        return self.af0 + self.af1 * dt + self.af2 * dt * dt
