"""Orbital mechanics substrate: Kepler solver, elements, ephemerides."""

from repro.orbits.kepler import solve_kepler, eccentric_to_true_anomaly
from repro.orbits.elements import OrbitalElements
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.orbits.almanac import nominal_gps_almanac

__all__ = [
    "solve_kepler",
    "eccentric_to_true_anomaly",
    "OrbitalElements",
    "BroadcastEphemeris",
    "nominal_gps_almanac",
]
