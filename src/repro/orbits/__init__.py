"""Orbital mechanics substrate: Kepler solver, elements, ephemerides."""

from typing import Any

from repro.orbits.kepler import solve_kepler, eccentric_to_true_anomaly
from repro.orbits.elements import OrbitalElements
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.orbits.almanac import nominal_almanac

__all__ = [
    "solve_kepler",
    "eccentric_to_true_anomaly",
    "OrbitalElements",
    "BroadcastEphemeris",
    "nominal_almanac",
    "nominal_gps_almanac",
]


def __getattr__(name: str) -> Any:
    # PEP 562 deprecation shim: defer to the almanac module's shim so
    # the warning fires exactly once per access site, not at import.
    if name == "nominal_gps_almanac":
        from repro.orbits import almanac

        return almanac.__getattr__("nominal_gps_almanac")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
