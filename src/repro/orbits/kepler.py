"""Kepler's equation and anomaly conversions.

Kepler's equation ``M = E - e sin(E)`` relates the mean anomaly ``M``
(linear in time) to the eccentric anomaly ``E`` (geometric position on
the ellipse).  Broadcast-ephemeris evaluation solves it once per
satellite position, so the solver below is written to converge in a few
iterations for the near-circular GPS orbits (e < 0.03) while remaining
robust for any eccentricity in ``[0, 1)``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, ConvergenceError
from repro.utils.mathutil import wrap_angle


def solve_kepler(
    mean_anomaly: float,
    eccentricity: float,
    tolerance: float = 1e-13,
    max_iterations: int = 50,
) -> float:
    """Solve Kepler's equation for the eccentric anomaly ``E``.

    Parameters
    ----------
    mean_anomaly:
        Mean anomaly ``M`` in radians (any value; wrapped internally).
    eccentricity:
        Orbital eccentricity ``e``, ``0 <= e < 1``.
    tolerance:
        Convergence threshold on ``|E - e sin(E) - M|`` in radians.
    max_iterations:
        Iteration budget before raising :class:`ConvergenceError`.

    Returns
    -------
    float
        Eccentric anomaly in radians, wrapped into ``(-pi, pi]``.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ConfigurationError(
            f"eccentricity must be in [0, 1) for an elliptical orbit, got {eccentricity}"
        )
    m = wrap_angle(mean_anomaly)

    # Newton iteration with a starting guess that is known to make the
    # iteration globally convergent for elliptic orbits.
    e = eccentricity
    if e < 0.8:
        eccentric = m
    else:
        eccentric = math.pi if m >= 0 else -math.pi

    for _iteration in range(max_iterations):
        f = eccentric - e * math.sin(eccentric) - m
        if abs(f) < tolerance:
            return wrap_angle(eccentric)
        f_prime = 1.0 - e * math.cos(eccentric)
        eccentric -= f / f_prime

    raise ConvergenceError(
        f"Kepler solver did not converge for M={mean_anomaly}, e={eccentricity}",
        iterations=max_iterations,
    )


def eccentric_to_true_anomaly(eccentric_anomaly: float, eccentricity: float) -> float:
    """Convert eccentric anomaly to true anomaly (both radians).

    Uses the half-angle form, which is numerically well behaved near
    both apsides.
    """
    if not 0.0 <= eccentricity < 1.0:
        raise ConfigurationError(
            f"eccentricity must be in [0, 1), got {eccentricity}"
        )
    factor = math.sqrt((1.0 + eccentricity) / (1.0 - eccentricity))
    return wrap_angle(2.0 * math.atan(factor * math.tan(eccentric_anomaly / 2.0)))
