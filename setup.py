"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` in offline environments where the
PEP 517 editable path (which requires ``wheel``) is unavailable.
"""

from setuptools import setup

setup()
